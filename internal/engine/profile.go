package engine

// In-VM sampling profiler. The dispatch loop already pays a back-edge
// fuel check every cancelCheckInterval instructions; when a run is
// profiled (Options.Profile) the same expiry also closes a sampling
// window, attributing the elapsed wall time to the instruction the VM
// is about to execute — bucketed by (opcode × static loop depth ×
// last-dispatched kernel path). Piece boundaries (execTop, execChunk,
// execD1) open and flush windows, so essentially all VM execution wall
// time lands in some bucket. Because windows are bounded by instruction
// count, their time attribution is proportional to instruction share,
// which is exactly what the flame view wants — but not a per-operation
// unit cost; for that, every profKernelInterval-th kernel dispatch is
// additionally timed exactly (see noteKernel), giving cost.Calibrate a
// measured ns-per-element per kernel path plus a residual baseline
// ns-per-instruction from the sampled totals.

import (
	"time"

	"decomine/internal/ast"
	"decomine/internal/obs"
)

var (
	obsProfNS      = obs.Default.Counter("engine.profile.ns")
	obsProfSamples = obs.Default.Counter("engine.profile.samples")
)

// profEpoch anchors the profiler's monotonic clock; time.Since on a
// fixed base compiles down to one nanotime call.
var profEpoch = time.Now()

func profNow() int64 { return int64(time.Since(profEpoch)) }

// profMaxDepth caps the loop-depth dimension of the attribution grid;
// deeper nesting folds into the last slot.
const profMaxDepth = 8

// profKernelSlots is the kernel dimension: one slot per kernel path
// plus slot NumKernels for "no kernel dispatched yet".
const profKernelSlots = NumKernels + 1

// profCells is the flattened (opcode × depth × kernel) grid size.
const profCells = int(ast.NumOpcodes) * profMaxDepth * profKernelSlots

// profKernelInterval: one kernel dispatch in this many (per frame, all
// paths pooled) is timed exactly. Power of two for a cheap mask.
const profKernelInterval = 128

// profAgg is one frame's profile accumulator. It lives off the hot
// path: sampled windows touch it once per cancelCheckInterval
// instructions, timed dispatches once per profKernelInterval kernels.
type profAgg struct {
	ns      [profCells]int64
	samples [profCells]int64
	// Exactly timed kernel dispatches (the calibration subsample),
	// split by operand locality: the base arrays hold same-slab (or
	// unpartitioned) dispatches, the cross arrays dispatches whose two
	// neighbor operands were loaded from different partition slabs. The
	// split is disjoint; cost.Calibrate fits Units.SlabCrossElem from
	// the per-element difference between the two.
	kernelNS        [NumKernels]int64
	kernelSampElems [NumKernels]int64
	kernelSamples   [NumKernels]int64

	kernelCrossNS      [NumKernels]int64
	kernelCrossElems   [NumKernels]int64
	kernelCrossSamples [NumKernels]int64
}

func (p *profAgg) reset() { *p = profAgg{} }

func (p *profAgg) merge(o *profAgg) {
	for i, v := range o.ns {
		p.ns[i] += v
	}
	for i, v := range o.samples {
		p.samples[i] += v
	}
	for k := 0; k < NumKernels; k++ {
		p.kernelNS[k] += o.kernelNS[k]
		p.kernelSampElems[k] += o.kernelSampElems[k]
		p.kernelSamples[k] += o.kernelSamples[k]
		p.kernelCrossNS[k] += o.kernelCrossNS[k]
		p.kernelCrossElems[k] += o.kernelCrossElems[k]
		p.kernelCrossSamples[k] += o.kernelCrossSamples[k]
	}
}

// noteTimed records one exactly timed kernel dispatch; cross marks that
// its neighbor operands straddled two partition slabs.
func (p *profAgg) noteTimed(k int, cross bool, elems, ns int64) {
	if cross {
		p.kernelCrossNS[k] += ns
		p.kernelCrossElems[k] += elems
		p.kernelCrossSamples[k]++
		return
	}
	p.kernelNS[k] += ns
	p.kernelSampElems[k] += elems
	p.kernelSamples[k]++
}

// profDepths computes the static loop depth of every pc (capped at
// profMaxDepth-1): an ILoopBegin sits at its enclosing depth, the body
// and the matching ILoopNext one deeper.
func profDepths(bc *ast.Lowered) []int8 {
	out := make([]int8, len(bc.Code))
	depth := int8(0)
	for pc := range bc.Code {
		switch bc.Code[pc].Op {
		case ast.ILoopBegin:
			out[pc] = depth
			if depth < profMaxDepth-1 {
				depth++
			}
		case ast.ILoopNext:
			out[pc] = depth
			if depth > 0 {
				depth--
			}
		default:
			out[pc] = depth
		}
	}
	return out
}

// profIndex flattens an attribution cell.
func profIndex(op ast.OpCode, depth int8, kernel int8) int {
	return (int(op)*profMaxDepth+int(depth))*profKernelSlots + int(kernel)
}

// profStart opens a sampling window at the current instant.
func (f *vmFrame) profStart() { f.profStamp = profNow() }

// profFlush closes the current window, attributing it to pc.
func (f *vmFrame) profFlush(pc int32) {
	now := profNow()
	d := now - f.profStamp
	f.profStamp = now
	if d <= 0 {
		return
	}
	i := profIndex(f.sh.bc.Code[pc].Op, f.sh.depths[pc], f.lastKernel)
	f.prof.ns[i] += d
	f.prof.samples[i]++
}

// profToObs converts a master frame's merged accumulators into the
// public profile representation.
func (f *vmFrame) profToObs() *obs.Profile {
	p := &obs.Profile{}
	for op := 0; op < int(ast.NumOpcodes); op++ {
		for d := 0; d < profMaxDepth; d++ {
			for k := 0; k < profKernelSlots; k++ {
				i := profIndex(ast.OpCode(op), int8(d), int8(k))
				if f.prof.samples[i] == 0 && f.prof.ns[i] == 0 {
					continue
				}
				b := obs.ProfileBucket{
					Op:      ast.OpCode(op).String(),
					Depth:   d,
					NS:      f.prof.ns[i],
					Samples: f.prof.samples[i],
				}
				if k < NumKernels {
					b.Kernel = KernelNames[k]
				}
				p.TotalNS += b.NS
				p.Samples += b.Samples
				p.Buckets = append(p.Buckets, b)
			}
		}
	}
	p.Ops = map[string]int64{}
	for op, c := range f.opCounts {
		if c != 0 {
			p.Ops[ast.OpCode(op).String()] = c
		}
	}
	for k := 0; k < NumKernels; k++ {
		name := KernelNames[k]
		if c := f.kernelCounts[k]; c != 0 {
			if p.Kernels == nil {
				p.Kernels = map[string]int64{}
			}
			p.Kernels[name] = c
		}
		if e := f.kernelElems[k]; e != 0 {
			if p.KernelElems == nil {
				p.KernelElems = map[string]int64{}
			}
			p.KernelElems[name] = e
		}
		if n := f.prof.kernelSamples[k]; n != 0 {
			if p.KernelNS == nil {
				p.KernelNS = map[string]int64{}
				p.KernelSampleElems = map[string]int64{}
				p.KernelSamples = map[string]int64{}
			}
			p.KernelNS[name] = f.prof.kernelNS[k]
			p.KernelSampleElems[name] = f.prof.kernelSampElems[k]
			p.KernelSamples[name] = n
		}
		// Cross-slab dispatches export under "<kernel>.cross" so the
		// calibration fit can compare per-element cost against the
		// same-slab baseline above.
		if n := f.prof.kernelCrossSamples[k]; n != 0 {
			if p.KernelNS == nil {
				p.KernelNS = map[string]int64{}
				p.KernelSampleElems = map[string]int64{}
				p.KernelSamples = map[string]int64{}
			}
			p.KernelNS[name+".cross"] = f.prof.kernelCrossNS[k]
			p.KernelSampleElems[name+".cross"] = f.prof.kernelCrossElems[k]
			p.KernelSamples[name+".cross"] = n
		}
	}
	// Clone round-trips through Merge, which sorts buckets hottest-first.
	return p.Clone()
}
