package cost

import (
	"testing"

	"decomine/internal/ast"
	"decomine/internal/graph"
	"decomine/internal/pattern"
	"decomine/internal/sampling"
)

func stats() GraphStats { return GraphStats{N: 10000, AvgDeg: 20, Labels: 1} }

// buildNest builds a depth-k nested loop program over neighbor
// intersections (the canonical clique enumeration shape).
func buildNest(k int) *ast.Program {
	b := ast.NewBuilder(0)
	all := b.All()
	g := b.NewGlobal()
	var cand int
	var loops []int
	cand = all
	var nbrs []int
	for i := 0; i < k; i++ {
		meta := &ast.LoopMeta{Prefix: pattern.Clique(i + 1), PrefixCode: pattern.Clique(i + 1).Canonical(), Constraints: i}
		v := b.BeginLoop(cand, meta)
		loops = append(loops, v)
		n := b.Neighbors(v)
		nbrs = append(nbrs, n)
		if i == 0 {
			cand = n
		} else {
			cand = b.Intersect(cand, n)
		}
	}
	x := b.Size(cand)
	b.GlobalAdd(g, x, 1)
	for range loops {
		b.EndLoop()
	}
	return b.Finish()
}

func TestStatsOf(t *testing.T) {
	g := graph.GNP(100, 0.1, 1)
	st := StatsOf(g)
	if st.N != 100 || st.AvgDeg <= 0 || st.Labels != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if p := st.P(); p <= 0 || p > 1 {
		t.Fatalf("P = %f", p)
	}
	lg := g.WithRandomLabels(5, 2)
	if StatsOf(lg).Labels < 2 {
		t.Fatal("labeled stats wrong")
	}
	if (GraphStats{}).P() != 0 {
		t.Fatal("zero stats P")
	}
}

func TestDeeperNestsCostMore(t *testing.T) {
	// The locality model keeps deeper nests strictly more expensive.
	m := NewLocality(stats(), 0.25)
	c2 := m.Cost(buildNest(2))
	c3 := m.Cost(buildNest(3))
	c4 := m.Cost(buildNest(4))
	if !(c2 < c3 && c3 < c4) {
		t.Errorf("locality: costs not increasing with depth: %g %g %g", c2, c3, c4)
	}
	// The AutoMine model famously does NOT: on sparse stats its
	// geometric intersection estimates make deeper levels look almost
	// free (§6.1's inaccuracy). Assert only positivity, and that the
	// deep-nest estimate stays within a whisker of the shallow one —
	// the documented underestimation.
	am := NewAutoMine(stats())
	a2, a4 := am.Cost(buildNest(2)), am.Cost(buildNest(4))
	if a2 <= 0 || a4 <= 0 {
		t.Fatalf("automine nonpositive costs %g %g", a2, a4)
	}
	if a4 > 2*a2 {
		t.Errorf("automine unexpectedly sensitive to depth: %g vs %g", a4, a2)
	}
}

func TestLocalityExceedsAutoMineOnIntersections(t *testing.T) {
	// On a sparse graph the AutoMine model estimates near-zero
	// intersection sizes, so deep nests look (wrongly) almost free; the
	// locality model keeps them expensive. This is the §6.1 observation.
	st := GraphStats{N: 1e6, AvgDeg: 10, Labels: 1}
	am := NewAutoMine(st).Cost(buildNest(4))
	la := NewLocality(st, 0.25).Cost(buildNest(4))
	if la <= am {
		t.Fatalf("locality %g should exceed automine %g on sparse stats", la, am)
	}
}

func TestApproxMiningUsesProfile(t *testing.T) {
	g := graph.MustDataset("ee")
	prof := sampling.BuildProfile(g, sampling.Options{SampleEdges: 3000, Trials: 3000, MaxSize: 4, Seed: 5})
	m := NewApproxMining(StatsOf(g), prof)
	c3 := m.Cost(buildNest(3))
	c4 := m.Cost(buildNest(4))
	if c3 <= 0 || c4 <= c3 {
		t.Fatalf("approx costs %g %g", c3, c4)
	}
}

func TestModelNames(t *testing.T) {
	g := graph.GNP(50, 0.1, 3)
	prof := sampling.BuildProfile(g, sampling.Options{SampleEdges: 100, Trials: 100, MaxSize: 3, Seed: 1})
	names := map[string]bool{}
	for _, m := range []Model{NewAutoMine(stats()), NewLocality(stats(), 0), NewApproxMining(stats(), prof)} {
		names[m.Name()] = true
	}
	for _, want := range []string{"automine", "locality", "approx-mining"} {
		if !names[want] {
			t.Errorf("missing model name %s", want)
		}
	}
}

func TestCostAccountsForTrimsAndFilters(t *testing.T) {
	build := func(trim bool) *ast.Program {
		b := ast.NewBuilder(0)
		all := b.All()
		g := b.NewGlobal()
		v0 := b.BeginLoop(all, nil)
		n0 := b.Neighbors(v0)
		cand := n0
		if trim {
			cand = b.TrimBelow(n0, v0)
		}
		v1 := b.BeginLoop(cand, nil)
		n1 := b.Neighbors(v1)
		i := b.Intersect(n0, n1)
		x := b.Size(i)
		b.GlobalAdd(g, x, 1)
		b.EndLoop()
		b.EndLoop()
		return b.Finish()
	}
	m := NewLocality(stats(), 0.25)
	if ct, cn := m.Cost(build(true)), m.Cost(build(false)); ct >= cn {
		t.Fatalf("trimmed plan should cost less: %g vs %g", ct, cn)
	}
}

func TestCostRanksGoodVsBadTriangleOrder(t *testing.T) {
	// A triangle plan that intersects before looping beats one that
	// loops over all vertices at the last level.
	good := buildNest(3)
	bad := func() *ast.Program {
		b := ast.NewBuilder(0)
		all := b.All()
		g := b.NewGlobal()
		v0 := b.BeginLoop(all, nil)
		n0 := b.Neighbors(v0)
		v1 := b.BeginLoop(n0, nil)
		_ = v1
		v2 := b.BeginLoop(all, nil) // pattern-oblivious last level
		n2 := b.Neighbors(v2)
		i := b.Intersect(n0, n2)
		x := b.Size(i)
		b.GlobalAdd(g, x, 1)
		b.EndLoop()
		b.EndLoop()
		b.EndLoop()
		return b.Finish()
	}()
	for _, m := range []Model{NewAutoMine(stats()), NewLocality(stats(), 0.25)} {
		if cg, cb := m.Cost(good), m.Cost(bad); cg >= cb {
			t.Errorf("%s: good %g should beat bad %g", m.Name(), cg, cb)
		}
	}
}

// TestSlabCrossTerm covers the partition-locality term: StatsOf derives
// SlabCross from the graph's slab shares, DefaultUnits keeps the term
// off (bit-identical estimates on partitioned graphs), and installing a
// positive SlabCrossElem raises intersect-heavy plan costs.
func TestSlabCrossTerm(t *testing.T) {
	flat := graph.RMAT(9, 8, 3)
	slabbed := flat.Reslab(8)
	if StatsOf(flat).SlabCross != 0 {
		t.Fatalf("single-slab SlabCross = %v, want 0", StatsOf(flat).SlabCross)
	}
	st := StatsOf(slabbed)
	if st.Slabs < 2 || st.SlabCross <= 0 || st.SlabCross >= 1 {
		t.Fatalf("slabbed stats: Slabs=%v SlabCross=%v", st.Slabs, st.SlabCross)
	}
	prog := buildNest(3)
	// DefaultUnits: partitioning must not change any estimate.
	flatStats := StatsOf(flat)
	for _, mk := range []func(GraphStats) Model{
		func(s GraphStats) Model { return NewAutoMine(s) },
		func(s GraphStats) Model { return NewLocality(s, 0.25) },
	} {
		a, b := mk(flatStats).Cost(prog), mk(st).Cost(prog)
		if a != b {
			t.Fatalf("DefaultUnits cost changed with partitioning: %v vs %v", a, b)
		}
	}
	// A positive weight prices the cross-slab span.
	u := DefaultUnits()
	u.SlabCrossElem = 2
	base := NewLocality(st, 0.25).Cost(prog)
	weighted := ApplyCalibration(NewLocality(st, 0.25), &Calibration{Units: u}).Cost(prog)
	if weighted <= base {
		t.Fatalf("SlabCrossElem=2 did not raise cost: %v <= %v", weighted, base)
	}
}
