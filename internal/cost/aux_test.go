package cost

import (
	"math"
	"testing"

	"decomine/internal/ast"
)

// clique5Walk mirrors the canonical aux shape (see ast/aux_test.go):
// two pruned sets re-intersected with neighbor lists two loop levels
// below their definitions.
func clique5Walk() *ast.Program {
	b := ast.NewBuilder(0)
	all := b.All()
	v0 := b.BeginLoop(all, nil)
	s1 := b.Neighbors(v0)
	v1 := b.BeginLoop(s1, nil)
	s2 := b.Neighbors(v1)
	s3 := b.Intersect(s1, s2)
	v2 := b.BeginLoop(s3, nil)
	s4 := b.Neighbors(v2)
	s5 := b.Intersect(s3, s4)
	v3 := b.BeginLoop(s5, nil)
	s6 := b.Neighbors(v3)
	x := b.Size(b.Intersect(s5, s6))
	g := b.NewGlobal()
	b.GlobalAdd(g, x, 1)
	b.EndLoop()
	b.EndLoop()
	b.EndLoop()
	b.EndLoop()
	return b.Finish()
}

func clusteredStats() GraphStats {
	// A community-graph profile: moderate degree, extreme clustering —
	// deep pruned sets stay large, so rebuilding row intersections at
	// depth dwarfs one shallow build.
	return GraphStats{N: 1000, AvgDeg: 60, Labels: 1, Closure: 0.6, DeepClosure: 0.8}
}

// arbiterFor lowers prog through the arbiter and returns it with the
// recorded candidates (captured by wrapping Decide).
func arbiterFor(t *testing.T, st GraphStats, prog *ast.Program) (*AuxArbiter, *ast.Lowered, []*ast.AuxCandidate) {
	t.Helper()
	arb := AuxDecider(NewLocality(st, 0.25), prog)
	if arb == nil {
		t.Fatal("locality model must expose an estimator to the arbiter")
	}
	var cands []*ast.AuxCandidate
	l := ast.LowerWith(prog, ast.LowerOpts{AuxDecide: func(c *ast.AuxCandidate) ast.AuxVerdict {
		cp := *c
		cands = append(cands, &cp)
		return arb.Decide(c)
	}})
	return arb, l, cands
}

// TestAuxArbiterMaterializesOnClusteredStats: on clustered stats the
// closure floor keeps deep rows large, the amortization favors
// materializing, and every verdict carries both cost estimates.
func TestAuxArbiterMaterializesOnClusteredStats(t *testing.T) {
	_, l, cands := arbiterFor(t, clusteredStats(), clique5Walk())
	if len(cands) != 2 {
		t.Fatalf("candidates = %d, want 2", len(cands))
	}
	if len(l.Aux) == 0 {
		t.Fatalf("clustered stats materialized no tables; decisions: %+v", l.AuxDecisions)
	}
	for _, d := range l.AuxDecisions {
		if d.MaterializeCost <= 0 || d.RecomputeCost <= 0 {
			t.Errorf("verdict missing cost estimates: %+v", d)
		}
		if d.Applied && d.MaterializeCost >= d.RecomputeCost {
			t.Errorf("applied table with materialize %v >= recompute %v", d.MaterializeCost, d.RecomputeCost)
		}
	}
}

// TestAuxArbiterRejectsDeepBuilds: a candidate whose source is defined
// at depth 3+ is rejected outright regardless of the estimates — deep
// rebuilds amortize only within a single deep iteration's subtree.
func TestAuxArbiterRejectsDeepBuilds(t *testing.T) {
	arb, _, cands := arbiterFor(t, clusteredStats(), clique5Walk())
	var shallow *ast.AuxCandidate
	for _, c := range cands {
		if c.SrcDepth <= 2 {
			shallow = c
		}
	}
	if shallow == nil {
		t.Fatal("no shallow candidate on the clique-5 walk")
	}
	if v := arb.Decide(shallow); !v.Materialize {
		t.Fatalf("shallow candidate rejected on clustered stats: %+v", v)
	}
	deep := *shallow
	deep.SrcDepth = 3
	if v := arb.Decide(&deep); v.Materialize || v.MaterializeCost != 0 || v.RecomputeCost != 0 {
		t.Fatalf("depth-3 build not rejected outright: %+v", v)
	}
}

// TestAuxRankAdjust pins the scale-free discount: savings are folded in
// as a fraction of the arbiter's own whole-plan cost — never subtracted
// from the model cost, whose units differ — keyed on the recorded cost
// verdict so a DisableAux lowering (verdicts recorded, nothing applied)
// ranks identically to an applying one.
func TestAuxRankAdjust(t *testing.T) {
	prog := clique5Walk()
	arb := AuxDecider(NewLocality(clusteredStats(), 0.25), prog)

	const modelCost = 1e12 // deliberately on a different scale
	saving := []ast.AuxDecision{{Applied: true, MaterializeCost: 10, RecomputeCost: 400}}
	adj := arb.RankAdjust(modelCost, saving)
	if !(adj < modelCost) {
		t.Fatalf("net savings did not discount the cost: %v >= %v", adj, modelCost)
	}
	total := arb.shape().cost
	want := modelCost * (1 - math.Min(390/total, 0.9))
	if adj != want {
		t.Fatalf("discount = %v, want scale-free %v (plan total %v)", adj, want, total)
	}

	// The knob must not move the ranking: an unapplied verdict with the
	// same costs discounts identically.
	unapplied := []ast.AuxDecision{{Applied: false, Table: -1, MaterializeCost: 10, RecomputeCost: 400}}
	if got := arb.RankAdjust(modelCost, unapplied); got != adj {
		t.Fatalf("DisableAux verdict ranks differently: %v != %v", got, adj)
	}

	// No net savings → untouched; savings can never flip the sign or
	// exceed the 90% cap however large the verdict claims to be.
	losing := []ast.AuxDecision{{MaterializeCost: 400, RecomputeCost: 10}}
	if got := arb.RankAdjust(modelCost, losing); got != modelCost {
		t.Fatalf("losing verdict moved the cost: %v", got)
	}
	if got := arb.RankAdjust(modelCost, nil); got != modelCost {
		t.Fatalf("no verdicts moved the cost: %v", got)
	}
	huge := []ast.AuxDecision{{MaterializeCost: 1, RecomputeCost: 1e30}}
	frac := 0.9 // forced through float64: constant 1-0.9 would fold exactly
	if got, cap := arb.RankAdjust(modelCost, huge), modelCost*(1-frac); got != cap {
		t.Fatalf("discount cap: %v, want %v", got, cap)
	}
}

// TestAuxDeciderNilWithoutEstimator: models that cannot expose an
// estimator fall back to the pass's structural default.
func TestAuxDeciderNilWithoutEstimator(t *testing.T) {
	var m Model = modelWithoutEstimator{}
	if arb := AuxDecider(m, clique5Walk()); arb != nil {
		t.Fatal("estimator-less model produced an arbiter")
	}
}

type modelWithoutEstimator struct{}

func (modelWithoutEstimator) Name() string              { return "stub" }
func (modelWithoutEstimator) Cost(*ast.Program) float64 { return 1 }
