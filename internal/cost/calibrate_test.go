package cost

import (
	"math"
	"testing"

	"decomine/internal/ast"
	"decomine/internal/graph"
	"decomine/internal/obs"
	"decomine/internal/sampling"
)

// legacyCost reproduces the pre-calibration estimator formulas exactly
// for the locality model (the unweighted original cost sites), so the
// bit-identity of DefaultUnits can be asserted against an independent
// implementation rather than against the weighted code itself.
func legacyLocalityCost(st GraphStats, plocal float64, prog *ast.Program) float64 {
	e := legacyEstimator{st: st, plocal: plocal}
	e.size = make([]float64, prog.NumSets)
	e.fromNbr = make([]bool, prog.NumSets)
	e.walk(prog.Root.Body, 1)
	return e.cost
}

type legacyEstimator struct {
	st      GraphStats
	plocal  float64
	size    []float64
	fromNbr []bool
	cost    float64
}

func (e *legacyEstimator) walk(body []*ast.Node, iters float64) {
	for _, n := range body {
		switch n.Kind {
		case ast.KLoop:
			perIter := e.size[n.Over]
			if perIter < 0 {
				perIter = 0
			}
			total := iters * perIter
			e.cost += total
			e.walk(n.Body, math.Max(total, 1e-12))
		case ast.KSetDef:
			e.defineSet(n, iters)
		case ast.KScalarDef, ast.KScalarReset, ast.KScalarAccum, ast.KGlobalAdd:
			e.cost += iters
		case ast.KHashClear:
			e.cost += iters
		case ast.KHashInc, ast.KHashGet:
			e.cost += 2 * iters
		case ast.KEmit:
			e.cost += 2 * iters
		case ast.KCondPos:
			e.walk(n.Body, iters)
		}
	}
}

func (e *legacyEstimator) hubProbOf(a, b int) float64 {
	p := e.st.HubProb
	if p <= 0 {
		return 0
	}
	switch {
	case e.fromNbr[a] && e.fromNbr[b]:
		return 1 - (1-p)*(1-p)
	case e.fromNbr[a] || e.fromNbr[b]:
		return p
	}
	return 0
}

func (e *legacyEstimator) defineSet(n *ast.Node, iters float64) {
	var sz float64
	var nb bool
	switch n.Op {
	case ast.OpAll:
		sz, nb = e.st.N, false
	case ast.OpNeighbors:
		sz, nb = e.st.AvgDeg, true
	case ast.OpIntersect:
		a, b := e.size[n.A], e.size[n.B]
		if e.fromNbr[n.A] && e.fromNbr[n.B] {
			sz = math.Min(a, b) * e.plocal
		} else {
			sz = a * b / math.Max(e.st.N, 1)
		}
		nb = e.fromNbr[n.A] || e.fromNbr[n.B]
		if p := e.hubProbOf(n.A, n.B); p > 0 {
			e.cost += iters * (p*math.Min(a, b) + (1-p)*(a+b))
		} else {
			e.cost += iters * (a + b)
		}
	case ast.OpSubtract:
		a, b := e.size[n.A], e.size[n.B]
		frac := 1 - b/math.Max(e.st.N, 1)
		if frac < 0.05 {
			frac = 0.05
		}
		sz, nb = a*frac, e.fromNbr[n.A]
		if e.fromNbr[n.B] && e.st.HubProb > 0 {
			p := e.st.HubProb
			e.cost += iters * (p*a + (1-p)*(a+b))
		} else {
			e.cost += iters * (a + b)
		}
	case ast.OpRemove:
		sz, nb = math.Max(e.size[n.A]-1, 0), e.fromNbr[n.A]
		e.cost += iters * e.size[n.A]
	case ast.OpTrimAbove, ast.OpTrimBelow:
		sz, nb = e.size[n.A]/2, e.fromNbr[n.A]
		e.cost += iters * math.Log2(math.Max(e.size[n.A], 2))
	case ast.OpCopy:
		sz, nb = e.size[n.A], e.fromNbr[n.A]
		e.cost += iters * e.size[n.A]
	case ast.OpFilterLabel, ast.OpFilterLabelOfVar:
		sz, nb = e.size[n.A]/e.st.Labels, e.fromNbr[n.A]
		e.cost += iters * e.size[n.A]
	case ast.OpFilterLabelNotOfVar:
		sz, nb = e.size[n.A]*(1-1/e.st.Labels), e.fromNbr[n.A]
		e.cost += iters * e.size[n.A]
	}
	if sz < 0 {
		sz = 0
	}
	e.size[n.Dst] = sz
	e.fromNbr[n.Dst] = nb
}

// TestDefaultUnitsBitIdentical: under DefaultUnits the weighted
// estimator must produce bit-for-bit the same float as the original
// unweighted formulas, on hubbed and hubless stats.
func TestDefaultUnitsBitIdentical(t *testing.T) {
	for _, st := range []GraphStats{
		{N: 10000, AvgDeg: 20, Labels: 1},
		{N: 10000, AvgDeg: 20, Labels: 1, HubProb: 0.35},
		{N: 512, AvgDeg: 48, Labels: 3, HubProb: 0.8},
	} {
		m := NewLocality(st, 0.25)
		for k := 2; k <= 5; k++ {
			prog := buildNest(k)
			got := m.Cost(prog)
			want := legacyLocalityCost(st, 0.25, prog)
			if got != want {
				t.Fatalf("nest %d, stats %+v: weighted cost %v != legacy %v (diff %g)",
					k, st, got, want, got-want)
			}
		}
	}
}

// TestCalibratedUnitsChangeCostsNotOrderInvariance: a calibration with
// non-trivial weights must actually move the estimates, while
// ApplyCalibration with nil must leave the model untouched.
func TestApplyCalibration(t *testing.T) {
	st := GraphStats{N: 10000, AvgDeg: 20, Labels: 1, HubProb: 0.35}
	base := NewLocality(st, 0.25)
	prog := buildNest(4)
	c0 := base.Cost(prog)

	if got := ApplyCalibration(base, nil); got != base {
		t.Fatal("nil calibration must return the model unchanged")
	}

	cal := &Calibration{Units: DefaultUnits()}
	cal.Units.MergeElem = 4
	calibrated := ApplyCalibration(base, cal)
	if calibrated == base {
		t.Fatal("calibration must return a fresh model")
	}
	c1 := calibrated.Cost(prog)
	if !(c1 > c0) {
		t.Fatalf("MergeElem=4 did not increase a merge-heavy estimate: %v vs %v", c1, c0)
	}
	// The original model still ranks with defaults.
	if again := base.Cost(prog); again != c0 {
		t.Fatalf("calibration mutated the source model: %v != %v", again, c0)
	}

	// All three models accept calibration.
	for _, m := range []Model{
		NewAutoMine(st),
		NewLocality(st, 0.25),
		NewApproxMining(st, sampling.BuildProfile(graph.GNP(50, 0.1, 1),
			sampling.Options{SampleEdges: 50, Trials: 50, MaxSize: 3, Seed: 1})),
	} {
		if ApplyCalibration(m, cal) == m {
			t.Fatalf("model %s did not accept calibration", m.Name())
		}
	}
}

// TestGallopModeling: with GallopElem on, a lopsided intersect prices
// as min·(log2(ratio)+1) instead of a+b; a balanced one still merges.
func TestGallopModeling(t *testing.T) {
	e := estimator{units: DefaultUnits()}
	if got := e.arrayPassCost(10, 1000); got != 1010 {
		t.Fatalf("gallop off: %v, want 1010", got)
	}
	e.units.GallopElem = 2
	want := 10 * (math.Log2(100) + 1) * 2
	if got := e.arrayPassCost(10, 1000); got != want {
		t.Fatalf("gallop on, lopsided: %v, want %v", got, want)
	}
	if got := e.arrayPassCost(1000, 10); got != want {
		t.Fatal("arrayPassCost not symmetric")
	}
	// Below the VM's dispatch threshold the merge path is kept.
	if got := e.arrayPassCost(100, 1000); got != 1100 {
		t.Fatalf("gallop on, balanced: %v, want merge 1100", got)
	}
}

func calProfile() *obs.Profile {
	return &obs.Profile{
		TotalNS: 1_000_000,
		Samples: 100,
		Ops:     map[string]int64{"ILoopNext": 60_000, "ISetDef": 20_000, "IGlobalAdd": 20_000},
		Kernels: map[string]int64{"merge": 1000, "bitmap": 500, "gallop": 200},
		KernelElems: map[string]int64{
			"merge": 100_000, "bitmap": 20_000, "gallop": 5_000,
		},
		KernelNS: map[string]int64{
			"merge": 8_000, "bitmap": 200, "gallop": 300,
		},
		KernelSampleElems: map[string]int64{
			"merge": 1_000, "bitmap": 200, "gallop": 50,
		},
		KernelSamples: map[string]int64{
			"merge": 32, "bitmap": 20, "gallop": 16,
		},
	}
}

func TestCalibrate(t *testing.T) {
	p := calProfile()
	cal, err := Calibrate(p)
	if err != nil {
		t.Fatal(err)
	}
	// merge: 8000ns/1000 elems = 8 ns/elem over 100k elems = 800k ns;
	// bitmap: 1 ns/elem over 20k = 20k; gallop: 6 ns/elem over 5k = 30k.
	// Residual = 1e6 − 850k = 150k over 100k instructions = 1.5 ns/instr.
	if math.Abs(cal.BaselineNSPerInstr-1.5) > 1e-9 {
		t.Fatalf("baseline = %v, want 1.5", cal.BaselineNSPerInstr)
	}
	if got := cal.Units.MergeElem; math.Abs(got-8/1.5) > 1e-9 {
		t.Fatalf("MergeElem = %v, want %v", got, 8/1.5)
	}
	if got := cal.Units.BitmapElem; math.Abs(got-1/1.5) > 1e-9 {
		t.Fatalf("BitmapElem = %v, want %v", got, 1/1.5)
	}
	if got := cal.Units.GallopElem; math.Abs(got-6/1.5) > 1e-9 {
		t.Fatalf("GallopElem = %v, want %v", got, 6/1.5)
	}
	if cal.Units.Loop != 1 || cal.Units.Scalar != 1 || cal.Units.Hash != 1 || cal.Units.Emit != 1 {
		t.Fatalf("bookkeeping units moved: %+v", cal.Units)
	}
	if cal.Instructions != 100_000 || cal.KernelSamples != 68 {
		t.Fatalf("evidence counts: %+v", cal)
	}
}

// TestCalibrateSlabCross pins the cross-slab surcharge fit: a kernel
// path whose cross-slab subsample measures slower per element than its
// same-slab baseline yields a positive SlabCrossElem equal to the
// excess in baseline units, maximized across paths; a cross side that
// is no slower, or below the sample minimum, leaves the term at zero.
func TestCalibrateSlabCross(t *testing.T) {
	withCross := func(ns int64) *obs.Profile {
		p := calProfile()
		p.Kernels["merge.cross"] = 400
		p.KernelElems["merge.cross"] = 4_000
		p.KernelNS["merge.cross"] = ns
		p.KernelSampleElems["merge.cross"] = 500
		p.KernelSamples["merge.cross"] = 20
		return p
	}

	// merge.cross at 12 ns/elem against merge's 8 ns/elem: the excess of
	// 4 ns/elem over the fitted baseline is the surcharge.
	cal, err := Calibrate(withCross(6_000))
	if err != nil {
		t.Fatal(err)
	}
	cross, same := cal.KernelNSPerElem["merge.cross"], cal.KernelNSPerElem["merge"]
	if cross <= same {
		t.Fatalf("test profile lost its cross excess: %v <= %v", cross, same)
	}
	want := (cross - same) / cal.BaselineNSPerInstr
	if math.Abs(cal.Units.SlabCrossElem-want) > 1e-9 {
		t.Fatalf("SlabCrossElem = %v, want excess %v", cal.Units.SlabCrossElem, want)
	}
	if cal.Units.SlabCrossElem <= 0 {
		t.Fatal("slab-graph profile with a slower cross path must fit a positive surcharge")
	}

	// Two measured cross paths: the fit takes the larger excess.
	p := withCross(6_000)
	p.Kernels["bitmap.cross"] = 200
	p.KernelElems["bitmap.cross"] = 2_000
	p.KernelNS["bitmap.cross"] = 4_000 // 20 ns/elem vs bitmap's 1
	p.KernelSampleElems["bitmap.cross"] = 200
	p.KernelSamples["bitmap.cross"] = 18
	cal2, err := Calibrate(p)
	if err != nil {
		t.Fatal(err)
	}
	if cal2.Units.SlabCrossElem <= cal.Units.SlabCrossElem {
		t.Fatalf("larger bitmap excess not taken: %v <= %v", cal2.Units.SlabCrossElem, cal.Units.SlabCrossElem)
	}

	// Crossing measures no slower → the term stays disabled.
	cal, err = Calibrate(withCross(3_000)) // 6 ns/elem < merge's 8
	if err != nil {
		t.Fatal(err)
	}
	if cal.Units.SlabCrossElem != 0 {
		t.Fatalf("cross path no slower than same-slab still fitted %v", cal.Units.SlabCrossElem)
	}

	// Cross side below the sample minimum → not fitted.
	p = withCross(6_000)
	p.KernelSamples["merge.cross"] = calMinKernelSamples - 1
	cal, err = Calibrate(p)
	if err != nil {
		t.Fatal(err)
	}
	if cal.Units.SlabCrossElem != 0 {
		t.Fatalf("sparse cross subsample fitted %v", cal.Units.SlabCrossElem)
	}

	// Pathological excess clamps like every other weight.
	cal, err = Calibrate(withCross(50_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if cal.Units.SlabCrossElem != calClamp {
		t.Fatalf("SlabCrossElem = %v, want clamp %v", cal.Units.SlabCrossElem, calClamp)
	}
}

func TestCalibrateFallbacks(t *testing.T) {
	// Below the per-path sample minimum the default weight is kept and
	// gallop modeling stays off.
	p := calProfile()
	p.KernelSamples["gallop"] = calMinKernelSamples - 1
	cal, err := Calibrate(p)
	if err != nil {
		t.Fatal(err)
	}
	if cal.Units.GallopElem != 0 {
		t.Fatalf("sparse gallop path calibrated anyway: %v", cal.Units.GallopElem)
	}
	if _, ok := cal.KernelNSPerElem["gallop"]; ok {
		t.Fatal("sparse path reported a per-elem cost")
	}

	// Weights clamp to [1/16, 16]×baseline.
	p = calProfile()
	p.KernelNS["merge"] = 100_000_000
	cal, err = Calibrate(p)
	if err != nil {
		t.Fatal(err)
	}
	if cal.Units.MergeElem != calClamp {
		t.Fatalf("MergeElem = %v, want clamp %v", cal.Units.MergeElem, calClamp)
	}

	// No timed dispatches at all → error.
	p = calProfile()
	p.KernelSamples = nil
	if _, err := Calibrate(p); err == nil {
		t.Fatal("calibration without timed dispatches must fail")
	}
	if _, err := Calibrate(nil); err == nil {
		t.Fatal("nil profile must fail")
	}
	if _, err := Calibrate(&obs.Profile{TotalNS: 5}); err == nil {
		t.Fatal("profile without instruction counts must fail")
	}
}
