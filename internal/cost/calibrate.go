package cost

// Profile-guided calibration. The three cost models price a plan in
// abstract units where one simple VM instruction costs 1 and one
// element of set-kernel work also costs 1. That second equivalence is a
// guess: on real hardware a merge step, a galloping probe, and a bitmap
// word test have very different costs, and the ratio shifts with the
// graph's cache footprint. Calibrate turns an accumulated execution
// profile (obs.Profile, produced by the engine's sampling profiler)
// into measured unit weights: a residual baseline ns-per-instruction
// plus a measured ns-per-element for each kernel path, expressed as
// multiples of the baseline. ApplyCalibration installs the weights into
// a model for ranking.
//
// Invariant: calibration never changes what a plan computes — every
// candidate still enumerates the same embeddings — it only changes
// which candidate the search ranks first.

import (
	"fmt"

	"decomine/internal/obs"
)

// Units holds the estimator's unit weights, in multiples of the cost of
// one simple VM instruction. The zero value is invalid; use
// DefaultUnits for the uncalibrated weights.
type Units struct {
	// Loop, Scalar, Hash, and Emit weight the per-iteration bookkeeping
	// cost sites. They stay 1 under calibration: the residual baseline
	// IS the measured per-instruction cost, so these are the unit.
	Loop   float64
	Scalar float64
	Hash   float64
	Emit   float64
	// MergeElem is the cost of one element position of an O(a+b) sorted
	// merge (intersect or subtract).
	MergeElem float64
	// GallopElem is the cost of one unit of galloping-search work,
	// min·(log2(max/min)+1) units per dispatch. Zero or negative
	// disables gallop cost modeling, making the estimator price the
	// array path as a plain merge — the uncalibrated behavior.
	GallopElem float64
	// BitmapElem is the cost of probing one array element against a hub
	// bitmap row.
	BitmapElem float64
	// SlabCrossElem is the extra cost per element of a two-operand
	// neighbor pass whose operands live in different storage slabs
	// (weighted by GraphStats.SlabCross, the degree-weighted cross-slab
	// probability). Zero — the default — disables the term so estimates
	// stay bit-identical to the pre-partitioning formulas. Calibrate
	// fits it on partitioned graphs from the profiler's locality-split
	// timed subsample: the per-element cost of "<kernel>.cross"
	// dispatches over the same-slab baseline, maximized across the
	// kernel paths that met the sample minimum (and kept zero when
	// cross-slab dispatches measure no slower).
	SlabCrossElem float64
}

// DefaultUnits returns the static weights: every cost site priced in
// plain instruction units, gallop modeling off. Estimates under
// DefaultUnits are bit-identical to the pre-calibration formulas.
func DefaultUnits() Units {
	return Units{Loop: 1, Scalar: 1, Hash: 1, Emit: 1, MergeElem: 1, GallopElem: 0, BitmapElem: 1}
}

const (
	// calMinKernelSamples gates a kernel path's measured per-element
	// time: below this many exactly timed dispatches, timer granularity
	// and scheduling noise dominate and the default weight is kept.
	calMinKernelSamples = 16
	// calClamp bounds each calibrated weight to [1/calClamp, calClamp]
	// times the baseline so one pathological measurement cannot invert
	// the ranking wholesale.
	calClamp = 16.0
)

// Calibration is the result of fitting unit weights to a profile.
type Calibration struct {
	Units Units `json:"units"`
	// BaselineNSPerInstr is the residual dispatch cost: profiled wall
	// time not attributed to kernel element work, per executed
	// instruction.
	BaselineNSPerInstr float64 `json:"baseline_ns_per_instr"`
	// KernelNSPerElem holds the measured per-element nanosecond cost of
	// every kernel path that met the sample minimum.
	KernelNSPerElem map[string]float64 `json:"kernel_ns_per_elem"`
	// Instructions and KernelSamples record how much evidence backed
	// the fit.
	Instructions  int64 `json:"instructions"`
	KernelSamples int64 `json:"kernel_samples"`
}

func clampUnit(u float64) float64 {
	if u < 1/calClamp {
		return 1 / calClamp
	}
	if u > calClamp {
		return calClamp
	}
	return u
}

// Calibrate fits unit weights to an accumulated execution profile.
// It needs a profile with sampled wall time, exact instruction counts,
// and at least one kernel path with calMinKernelSamples exactly timed
// dispatches; otherwise it returns an error and the caller should keep
// ranking with the static weights.
func Calibrate(p *obs.Profile) (*Calibration, error) {
	if p == nil || p.TotalNS <= 0 {
		return nil, fmt.Errorf("cost: calibration needs a profile with sampled wall time")
	}
	var instr int64
	for _, c := range p.Ops {
		instr += c
	}
	if instr <= 0 {
		return nil, fmt.Errorf("cost: calibration needs instruction counts in the profile")
	}

	perElem := map[string]float64{}
	var kSamples int64
	for name, n := range p.KernelSamples {
		kSamples += n
		if el := p.KernelSampleElems[name]; n >= calMinKernelSamples && el > 0 {
			perElem[name] = float64(p.KernelNS[name]) / float64(el)
		}
	}
	if len(perElem) == 0 {
		return nil, fmt.Errorf("cost: calibration needs >= %d timed dispatches on some kernel path (have %d total)",
			calMinKernelSamples, kSamples)
	}

	// Residual baseline: wall time left after pricing every dispatch of
	// the measured paths at its fitted per-element cost, spread over
	// the executed instructions. The exact-timing subsample can
	// over-attribute (its windows include call overhead), so the
	// residual is floored at 5% of the total.
	kernelNS := 0.0
	for name, pe := range perElem {
		kernelNS += pe * float64(p.KernelElems[name])
	}
	residual := float64(p.TotalNS) - kernelNS
	if floor := float64(p.TotalNS) / 20; residual < floor {
		residual = floor
	}
	baseline := residual / float64(instr)

	u := DefaultUnits()
	if pe, ok := perElem["merge"]; ok {
		u.MergeElem = clampUnit(pe / baseline)
	}
	if pe, ok := perElem["gallop"]; ok {
		// A measured gallop path switches gallop cost modeling on.
		u.GallopElem = clampUnit(pe / baseline)
	}
	if pe, ok := perElem["bitmap"]; ok {
		// bitmap-count (bitmap×bitmap popcount) has a different element
		// measure (words, not probes) and no estimator cost site of its
		// own; only the array×bitmap probe path calibrates BitmapElem.
		u.BitmapElem = clampUnit(pe / baseline)
	}
	// Cross-slab surcharge: the measured per-element excess of dispatches
	// whose operands straddled two partition slabs over the same path's
	// same-slab cost. Fitted only when both sides of a path met the
	// sample minimum; stays zero (term disabled) when crossing measures
	// no slower. bitmap-count is skipped for the same element-measure
	// reason as above.
	for _, k := range []string{"merge", "gallop", "bitmap"} {
		pe, ok := perElem[k]
		cpe, cok := perElem[k+".cross"]
		if ok && cok && cpe > pe {
			if d := (cpe - pe) / baseline; d > u.SlabCrossElem {
				u.SlabCrossElem = d
			}
		}
	}
	if u.SlabCrossElem > calClamp {
		u.SlabCrossElem = calClamp
	}
	return &Calibration{
		Units:              u,
		BaselineNSPerInstr: baseline,
		KernelNSPerElem:    perElem,
		Instructions:       instr,
		KernelSamples:      kSamples,
	}, nil
}

// unitCalibrated is implemented by models whose estimator weights can
// be replaced with measured values.
type unitCalibrated interface {
	withUnits(Units) Model
}

// ApplyCalibration returns a copy of m ranking with cal's measured unit
// weights. It returns m unchanged when cal is nil or the model does not
// expose unit weights.
func ApplyCalibration(m Model, cal *Calibration) Model {
	if cal == nil {
		return m
	}
	if c, ok := m.(unitCalibrated); ok {
		return c.withUnits(cal.Units)
	}
	return m
}
