package cost

// Materialize-vs-recompute arbitration for auxiliary graphs. The
// lowering pass (ast.materializeAux) finds candidate tables and asks a
// decision callback whether building aux[v] = N(v) ∩ C pays for itself;
// AuxDecider answers with the active cost model's estimator, so
// core.Search ranks aux and non-aux plans against each other instead of
// always choosing one. The estimate is the classic amortization:
//
//	materialize = builds · |C| · rowPass(deg, |C|)          (build work)
//	            + Σ_use execs · (pass(x, row) + lookup)     (pruned reads)
//	recompute   = Σ_use execs · pass(x, deg)                (status quo)
//
// where builds is the expected iteration count of the loop enclosing
// C's definition, execs the iteration count of the innermost loop
// containing each use site, x the non-neighbor operand's expected size,
// and row = |N(w) ∩ C| the expected pruned row length. Passes are
// priced with the same calibrated per-element units and hub-bitmap
// blending the estimator uses everywhere else, so calibration shifts
// this decision exactly like it shifts plan ranking.
//
// Two scale subtleties. First, the amortization compares loop totals
// ACROSS depths — a shallow build loop against deep use loops — which
// sampled profiles get wrong on clustered graphs: a deep prefix only
// survives edge sampling when every one of its edges was kept, so
// profiled deep-loop counts collapse super-linearly while shallow ones
// do not. The arbiter therefore disables the profile loopCount override
// and takes its shape from the size chain, whose deep intersections are
// floored by the sampled closure statistics
// (GraphStats.Closure/DeepClosure). Second, those size-chain costs are
// in a different unit scale than a profile-backed Model.Cost, so the
// verdict's absolute costs must never be subtracted from a model cost
// directly; RankAdjust folds the savings in relatively, as a fraction
// of the same estimator run's whole-plan cost.

import (
	"math"
	"sync"

	"decomine/internal/ast"
)

// auxEstimating is implemented by models that can expose their
// configured AST estimator for shape extraction.
type auxEstimating interface {
	estimator() *estimator
}

// AuxArbiter prices materialize-vs-recompute for one program's
// auxiliary-table candidates: Decide is the ast.LowerOpts.AuxDecide
// callback, RankAdjust folds the applied tables' estimated savings into
// the model's plan cost. The plan shape (register sizes, loop totals)
// is computed lazily on first use and shared across all of the
// program's candidate tables.
type AuxArbiter struct {
	ae   auxEstimating
	prog *ast.Program
	once sync.Once
	e    *estimator
}

// AuxDecider returns the arbiter wiring model m into the
// auxiliary-graph pass for prog, or nil when the model does not expose
// an estimator (the pass then falls back to its structural default).
func AuxDecider(m Model, prog *ast.Program) *AuxArbiter {
	ae, ok := m.(auxEstimating)
	if !ok {
		return nil
	}
	return &AuxArbiter{ae: ae, prog: prog}
}

func (a *AuxArbiter) shape() *estimator {
	a.once.Do(func() {
		a.e = a.ae.estimator()
		// Cross-depth loop-total ratios must come from the closure-floored
		// size chain, not from sampled prefix counts (see the package
		// comment on profile deep-prefix collapse).
		a.e.loopCount = nil
		a.e.loopTotal = map[int]float64{}
		a.e.run(a.prog)
	})
	return a.e
}

// RankAdjust returns modelCost discounted by the materialized tables'
// estimated net savings, expressed as a fraction of the arbiter's own
// whole-plan cost so the adjustment is scale-free: the verdict costs
// and the plan total come from the same estimator run, and modelCost —
// whatever its units — is scaled, never subtracted from. Savings are
// keyed on the recorded cost verdict rather than Applied so a
// DisableAux lowering (which records verdicts without applying them)
// ranks identically — the knob must not change which traversal wins.
func (a *AuxArbiter) RankAdjust(modelCost float64, ds []ast.AuxDecision) float64 {
	var saved float64
	for _, d := range ds {
		if d.RecomputeCost > d.MaterializeCost {
			saved += d.RecomputeCost - d.MaterializeCost
		}
	}
	if saved <= 0 {
		return modelCost
	}
	total := a.shape().cost
	if total <= 0 {
		return modelCost
	}
	frac := math.Min(saved/total, 0.9)
	return modelCost * (1 - frac)
}

// Decide answers one candidate with the amortized estimate.
func (a *AuxArbiter) Decide(c *ast.AuxCandidate) ast.AuxVerdict {
	e := a.shape()
	if int(c.Src) >= len(e.size) {
		return ast.AuxVerdict{}
	}
	// Deep builds are rejected outright: a table rebuilt at depth 3+
	// amortizes only across the subtree of a single deep iteration, so
	// the verdict rides entirely on the estimator's deepest — least
	// certain — loop totals, and a miss there turns every rebuild into
	// pure overhead. Shallow builds amortize across the whole search
	// below them and their build loops are sized from well-estimated
	// shallow sets.
	if c.SrcDepth > 2 {
		return ast.AuxVerdict{}
	}
	srcSz := e.size[c.Src]
	builds, ok := e.loopTotal[int(c.BuildLoopVar)]
	if !ok || srcSz <= 0 {
		return ast.AuxVerdict{}
	}
	deg := math.Max(e.st.AvgDeg, 1)
	p := e.st.HubProb
	// Expected pruned row length |N(v) ∩ C| under the model's own
	// intersection estimate, floored (like every intersection in the
	// estimator's walk) by the closure chain one constraint deeper
	// than the source set.
	rowSz := e.intersect(deg, srcSz, true, e.fromNbr[c.Src])
	if fl := math.Min(e.closureSize(e.chain[c.Src]+1), math.Min(deg, srcSz)); fl > rowSz {
		rowSz = fl
	}

	// One build intersects every source vertex's adjacency with the
	// source set; each row dispatch takes the bitmap filter when the
	// row's vertex is a hub.
	rowPass := p*math.Min(deg, srcSz)*e.units.BitmapElem + (1-p)*e.arrayPassCost(deg, srcSz)
	mat := builds * srcSz * rowPass
	var rec float64
	for _, u := range c.Uses {
		if int(u.OtherReg) >= len(e.size) {
			return ast.AuxVerdict{}
		}
		// The use runs once per iteration of its innermost enclosing
		// loop — deeper than w's own loop when the intersection (or
		// fused count) sits below the binding.
		execs, ok := e.loopTotal[int(u.EncLoopVar)]
		if !ok {
			execs, ok = e.loopTotal[int(u.LoopVar)]
		}
		if !ok {
			return ast.AuxVerdict{}
		}
		x := e.size[u.OtherReg]
		xNb := e.fromNbr[u.OtherReg]
		// Status quo: x against the raw adjacency row, either operand
		// possibly backed by a hub bitmap.
		pOld := hubPairProb(p, xNb, true)
		rec += execs * (pOld*math.Min(x, deg)*e.units.BitmapElem + (1-pOld)*e.arrayPassCost(x, deg))
		// Rewritten: x against the pruned row (a plain array — only
		// x's side can still carry a bitmap), plus the binary-search
		// row lookup.
		pNew := 0.0
		if xNb {
			pNew = p
		}
		mat += execs * (pNew*math.Min(x, rowSz)*e.units.BitmapElem + (1-pNew)*e.arrayPassCost(x, rowSz))
		mat += execs * math.Log2(math.Max(srcSz, 2)) * e.units.Scalar
	}
	return ast.AuxVerdict{
		Materialize:     mat < rec,
		MaterializeCost: mat,
		RecomputeCost:   rec,
	}
}

// hubPairProb is the probability at least one operand of an
// intersection carries a hub bitmap row, given which operands are
// neighbor-derived.
func hubPairProb(p float64, aNb, bNb bool) float64 {
	if p <= 0 {
		return 0
	}
	switch {
	case aNb && bNb:
		return 1 - (1-p)*(1-p)
	case aNb || bNb:
		return p
	}
	return 0
}
