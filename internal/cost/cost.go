// Package cost implements DecoMine's three cost models (paper §6): the
// AutoMine-style random-graph model, the locality-aware model, and the
// approximate-mining based model backed by a sampled pattern-count
// profile. A model assigns an estimated execution cost to a compiled AST;
// the algorithm search engine ranks candidate plans by this number, so
// only relative accuracy matters.
package cost

import (
	"math"

	"decomine/internal/ast"
	"decomine/internal/graph"
	"decomine/internal/obs"
	"decomine/internal/sampling"
	"decomine/internal/vset"
)

// Per-model evaluation counters: one increment per candidate plan
// costed, so the registry shows how much ranking work each search did
// and which model is live.
var (
	obsEvalAutoMine = obs.Default.Counter("cost.evals.automine")
	obsEvalLocality = obs.Default.Counter("cost.evals.locality")
	obsEvalApprox   = obs.Default.Counter("cost.evals.approx-mining")
)

// GraphStats summarizes the input graph for the analytic models.
type GraphStats struct {
	N      float64 // |V|
	AvgDeg float64 // 2|E|/|V|
	Labels float64 // number of distinct labels (1 if unlabeled)
	// HubProb is the fraction of adjacency covered by the graph's hub
	// bitmap index (hub degree sum / 2|E|), i.e. the degree-weighted
	// probability that a neighbor-set operand of an intersection has a
	// bitmap row and the VM takes an O(min) kernel instead of an
	// O(a+b) merge. Zero when the graph has no hub index.
	HubProb float64
	// Closure is the sampled edge-closure probability: for an edge
	// (u,v), the expected |N(u) ∩ N(v)| / min(deg u, deg v). DeepClosure
	// is the second-order variant — for C = N(u) ∩ N(v) and w ∈ C, the
	// expected |N(w) ∩ C| / |C|, i.e. the density an auxiliary row keeps
	// once its source set is already triangle-pruned. Both are near zero
	// on uniform random graphs (the independence assumption holds) and
	// approach one inside dense communities, where independence-based
	// deep-set estimates collapse to zero and would starve the
	// materialize-vs-recompute arbitration of its amortization term.
	Closure     float64
	DeepClosure float64
	// Slabs is the graph's storage partition count and SlabCross the
	// degree-weighted probability that two independent neighbor-list
	// operands live in different slabs: 1 − Σ_s share(s)², where
	// share(s) is slab s's fraction of the adjacency volume. It is the
	// "slab span" of a candidate plan's neighbor operands — the chance an
	// intersection streams two different storage regions at once. Zero
	// for single-slab graphs.
	Slabs     float64
	SlabCross float64
}

// P returns the uniform connection probability AvgDeg/N used by the
// AutoMine model.
func (s GraphStats) P() float64 {
	if s.N == 0 {
		return 0
	}
	return s.AvgDeg / s.N
}

// StatsOf derives GraphStats from a graph.
func StatsOf(g *graph.Graph) GraphStats {
	labels := float64(g.NumLabels())
	if labels < 1 {
		labels = 1
	}
	st := GraphStats{N: float64(g.NumVertices()), AvgDeg: g.AvgDegree(), Labels: labels}
	if ix := g.HubIndex(); ix != nil {
		if m2 := st.N * st.AvgDeg; m2 > 0 {
			st.HubProb = float64(ix.CoveredDegree()) / m2
		}
	}
	st.Slabs = float64(g.NumSlabs())
	if g.NumSlabs() > 1 {
		same := 0.0
		for _, share := range g.SlabShares() {
			same += share * share
		}
		st.SlabCross = 1 - same
	}
	st.Closure, st.DeepClosure = sampleClosure(g)
	return st
}

// sampleClosure measures Closure and DeepClosure over a deterministic
// stride sample of edges (no RNG: the same graph always yields the same
// statistics, keeping plan choices reproducible). Cost is O(|E|) for
// the edge walk plus a few hundred set intersections.
func sampleClosure(g *graph.Graph) (closure, deep float64) {
	m := g.NumEdges()
	if m == 0 {
		return 0, 0
	}
	const maxSamples = 256
	stride := int(m/maxSamples) + 1
	var buf, row []uint32
	var n1, n2 int
	var s1, s2 float64
	i := 0
	g.Edges(func(u, v uint32) {
		i++
		if (i-1)%stride != 0 {
			return
		}
		nu, nv := g.Neighbors(u), g.Neighbors(v)
		if len(nu) == 0 || len(nv) == 0 {
			return
		}
		buf = vset.Intersect(buf[:0], nu, nv)
		n1++
		s1 += float64(len(buf)) / float64(min(len(nu), len(nv)))
		if len(buf) == 0 {
			return
		}
		// One representative row per sampled edge: the median common
		// neighbor's adjacency intersected back against the common set.
		w := buf[len(buf)/2]
		row = vset.Intersect(row[:0], g.Neighbors(w), buf)
		n2++
		s2 += float64(len(row)) / float64(len(buf))
	})
	if n1 > 0 {
		closure = s1 / float64(n1)
	}
	if n2 > 0 {
		deep = s2 / float64(n2)
	}
	return closure, deep
}

// Model estimates plan execution cost.
type Model interface {
	Name() string
	Cost(prog *ast.Program) float64
}

// ---- AutoMine random-graph model ----

type autoMine struct {
	st    GraphStats
	units Units
}

// NewAutoMine returns the baseline model: a random graph with n vertices
// where every pair is connected with fixed probability p (§6.1).
func NewAutoMine(st GraphStats) Model { return &autoMine{st: st, units: DefaultUnits()} }

func (m *autoMine) Name() string { return "automine" }

func (m *autoMine) withUnits(u Units) Model { c := *m; c.units = u; return &c }

func (m *autoMine) estimator() *estimator {
	return &estimator{st: m.st, units: m.units, intersect: func(a, b float64, _, _ bool) float64 {
		return a * b / math.Max(m.st.N, 1)
	}}
}

func (m *autoMine) Cost(prog *ast.Program) float64 {
	obsEvalAutoMine.Inc()
	return m.estimator().run(prog)
}

// ---- locality-aware model ----

type locality struct {
	st     GraphStats
	plocal float64
	units  Units
}

// NewLocality returns the locality-aware model: vertices within α hops
// connect with probability plocal >> p (§6.1). In connected patterns all
// bound vertices are within the α=8 default, so every neighbor-set
// intersection uses plocal.
func NewLocality(st GraphStats, plocal float64) Model {
	if plocal <= 0 {
		plocal = 0.25
	}
	return &locality{st: st, plocal: plocal, units: DefaultUnits()}
}

func (m *locality) Name() string { return "locality" }

func (m *locality) withUnits(u Units) Model { c := *m; c.units = u; return &c }

func (m *locality) estimator() *estimator {
	return &estimator{st: m.st, units: m.units, intersect: func(a, b float64, na, nb bool) float64 {
		if na && nb {
			return math.Min(a, b) * m.plocal
		}
		return a * b / math.Max(m.st.N, 1)
	}}
}

func (m *locality) Cost(prog *ast.Program) float64 {
	obsEvalLocality.Inc()
	return m.estimator().run(prog)
}

// ---- approximate-mining model ----

type approxMining struct {
	st       GraphStats
	profile  *sampling.Profile
	fallback Model
	units    Units
}

// NewApproxMining returns the approximate-mining based model (§6.2): the
// iteration count of a loop level is estimated by the profiled count of
// the pattern prefix reaching that level. Prefixes without profile
// entries (disconnected prefixes, oversized patterns) fall back to the
// locality model's branching estimate.
func NewApproxMining(st GraphStats, profile *sampling.Profile) Model {
	return &approxMining{st: st, profile: profile, fallback: NewLocality(st, 0.25), units: DefaultUnits()}
}

func (m *approxMining) Name() string { return "approx-mining" }

func (m *approxMining) withUnits(u Units) Model { c := *m; c.units = u; return &c }

func (m *approxMining) estimator() *estimator {
	return &estimator{
		st:    m.st,
		units: m.units,
		intersect: func(a, b float64, na, nb bool) float64 {
			if na && nb {
				return math.Min(a, b) * 0.25
			}
			return a * b / math.Max(m.st.N, 1)
		},
		loopCount: func(meta *ast.LoopMeta, parentCount float64) (float64, bool) {
			if meta == nil || meta.Prefix == nil {
				return 0, false
			}
			c, ok := m.profile.Count(meta.Prefix)
			if !ok {
				return 0, false
			}
			if meta.Trimmed {
				// Symmetry-breaking trims cut the surviving tuples by the
				// prefix automorphism factor; a factor-2 per trim is the
				// standard coarse correction.
				c /= 2
			}
			return math.Max(c, 1e-9), true
		},
	}
}

func (m *approxMining) Cost(prog *ast.Program) float64 {
	obsEvalApprox.Inc()
	return m.estimator().run(prog)
}

// ---- shared AST-walking estimator ----

// estimator walks a program accumulating expected work. For every set
// register it tracks an estimated cardinality and whether the set derives
// from neighbor lists (the locality signal); for every loop it tracks the
// expected total number of iterations across the whole execution.
type estimator struct {
	st GraphStats
	// units weights the cost sites; under DefaultUnits every estimate
	// is bit-identical to the unweighted formulas (every weight is an
	// exact 1.0 multiply, gallop modeling is off).
	units     Units
	intersect func(a, b float64, aNb, bNb bool) float64
	// loopCount, when set and returning ok, overrides the expected TOTAL
	// number of iterations of a loop (absolute, profile units).
	loopCount func(meta *ast.LoopMeta, parentCount float64) (float64, bool)

	size    []float64
	fromNbr []bool
	// chain counts the adjacency constraints folded into each set
	// register (N(v) is 1, an intersection sums its operands): the
	// exponent of the closure-chain size floor that keeps deep
	// triangle-pruned sets from collapsing to zero on clustered graphs.
	chain []int
	cost  float64

	// loopTotal, when non-nil, captures each loop's expected TOTAL
	// iteration count keyed by its loop variable (the plan shape
	// AuxDecider prices materialize-vs-recompute against).
	loopTotal map[int]float64
}

func (e *estimator) run(prog *ast.Program) float64 {
	e.size = make([]float64, prog.NumSets)
	e.fromNbr = make([]bool, prog.NumSets)
	e.chain = make([]int, prog.NumSets)
	e.walk(prog.Root.Body, 1, 1)
	return e.cost
}

// closureSize is the clustered-graph floor for a set holding `chain`
// adjacency constraints: one edge closure keeps ~Closure·deg common
// neighbors and each further constraint keeps ~DeepClosure of what
// survived. On uniform random graphs the sampled closures are ~deg/N
// and the floor decays below the independence estimate, changing
// nothing; on community-structured graphs it is what keeps deep loops
// — and therefore the materialize-vs-recompute amortization — from
// being priced as if they never ran.
func (e *estimator) closureSize(chain int) float64 {
	if e.st.Closure <= 0 || chain < 2 {
		return 0
	}
	return e.st.AvgDeg * e.st.Closure * math.Pow(e.st.DeepClosure, float64(chain-2))
}

// walk processes a body executed `iters` expected times total; prefCount
// is the profile-unit count of tuples reaching this body (used to chain
// loopCount overrides).
func (e *estimator) walk(body []*ast.Node, iters, prefCount float64) {
	for _, n := range body {
		switch n.Kind {
		case ast.KLoop:
			perIter := e.size[n.Over]
			if perIter < 0 {
				perIter = 0
			}
			total := iters * perIter
			childPref := prefCount * perIter
			if e.loopCount != nil {
				if c, ok := e.loopCount(n.Meta, prefCount); ok {
					// The profile gives the absolute number of prefix
					// tuples, which IS the total iteration count of this
					// loop level (§6.2's key observation). All candidate
					// plans are costed in the same profile units, so the
					// ranking is consistent.
					total = c
					childPref = c
				}
			}
			e.cost += total * e.units.Loop // loop bookkeeping
			if e.loopTotal != nil {
				e.loopTotal[n.Var] += total
			}
			e.walk(n.Body, math.Max(total, 1e-12), math.Max(childPref, 1e-12))
		case ast.KSetDef:
			e.defineSet(n, iters)
		case ast.KScalarDef, ast.KScalarReset, ast.KScalarAccum, ast.KGlobalAdd:
			e.cost += iters * e.units.Scalar
		case ast.KHashClear:
			e.cost += iters * e.units.Hash
		case ast.KHashInc, ast.KHashGet:
			e.cost += 2 * iters * e.units.Hash
		case ast.KEmit:
			e.cost += 2 * iters * e.units.Emit
		case ast.KCondPos:
			e.walk(n.Body, iters, prefCount)
		}
	}
}

// hubProbOf returns the probability that at least one of the two
// intersect operands carries a hub bitmap row: only neighbor-derived
// sets can, each independently with probability HubProb.
func (e *estimator) hubProbOf(a, b int) float64 {
	p := e.st.HubProb
	if p <= 0 {
		return 0
	}
	switch {
	case e.fromNbr[a] && e.fromNbr[b]:
		return 1 - (1-p)*(1-p)
	case e.fromNbr[a] || e.fromNbr[b]:
		return p
	}
	return 0
}

// arrayPassCost prices the array path of a two-operand set pass over
// expected sizes a and b: an O(a+b) merge, or — when gallop modeling is
// calibrated on (GallopElem > 0) and the expected size ratio crosses
// the VM's dispatch threshold — the O(min·log(max/min)) galloping
// search the VM would actually run.
func (e *estimator) arrayPassCost(a, b float64) float64 {
	if g := e.units.GallopElem; g > 0 {
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo > 0 && hi >= lo*vset.GallopThreshold {
			return lo * (math.Log2(hi/lo) + 1) * g
		}
	}
	return (a + b) * e.units.MergeElem
}

// slabSpanCost prices the locality penalty of a two-operand set pass
// whose neighbor-derived operands live in different storage slabs: with
// probability SlabCross the pass streams two slabs at once, costing an
// extra SlabCrossElem per element touched. Off (zero) unless the weight
// is installed and the graph is partitioned — only neighbor pairs span
// slabs, derived scratch sets are worker-local.
func (e *estimator) slabSpanCost(a, b float64, aNb, bNb bool) float64 {
	w := e.units.SlabCrossElem
	if w <= 0 || e.st.SlabCross <= 0 || !aNb || !bNb {
		return 0
	}
	return e.st.SlabCross * (a + b) * w
}

func (e *estimator) defineSet(n *ast.Node, iters float64) {
	var sz float64
	var nb bool
	ch := 0
	if n.Op != ast.OpAll && n.Op != ast.OpNeighbors {
		ch = e.chain[n.A]
	}
	switch n.Op {
	case ast.OpAll:
		sz, nb = e.st.N, false
	case ast.OpNeighbors:
		sz, nb, ch = e.st.AvgDeg, true, 1
	case ast.OpIntersect:
		a, b := e.size[n.A], e.size[n.B]
		sz = e.intersect(a, b, e.fromNbr[n.A], e.fromNbr[n.B])
		ch = e.chain[n.A] + e.chain[n.B]
		if fl := math.Min(e.closureSize(ch), math.Min(a, b)); fl > sz {
			sz = fl
		}
		nb = e.fromNbr[n.A] || e.fromNbr[n.B]
		// Kernel-aware merge cost: with probability HubProb a
		// neighbor-derived operand has a hub bitmap row and the VM runs
		// the O(min) array×bitmap filter instead of the O(a+b) merge.
		if p := e.hubProbOf(n.A, n.B); p > 0 {
			e.cost += iters * (p*math.Min(a, b)*e.units.BitmapElem + (1-p)*e.arrayPassCost(a, b))
		} else {
			e.cost += iters * e.arrayPassCost(a, b) // merge cost
		}
		e.cost += iters * e.slabSpanCost(a, b, e.fromNbr[n.A], e.fromNbr[n.B])
	case ast.OpSubtract:
		a, b := e.size[n.A], e.size[n.B]
		frac := 1 - b/math.Max(e.st.N, 1)
		if frac < 0.05 {
			frac = 0.05
		}
		sz, nb = a*frac, e.fromNbr[n.A]
		// A hub row on the subtrahend turns the O(a+b) merge into an
		// O(a) probe filter. Subtraction never gallops in the VM, so
		// the array path is always priced as a merge.
		if e.fromNbr[n.B] && e.st.HubProb > 0 {
			p := e.st.HubProb
			e.cost += iters * (p*a*e.units.BitmapElem + (1-p)*(a+b)*e.units.MergeElem)
		} else {
			e.cost += iters * (a + b) * e.units.MergeElem
		}
		e.cost += iters * e.slabSpanCost(a, b, e.fromNbr[n.A], e.fromNbr[n.B])
	case ast.OpRemove:
		sz, nb = math.Max(e.size[n.A]-1, 0), e.fromNbr[n.A]
		e.cost += iters * e.size[n.A] * e.units.Scalar
	case ast.OpTrimAbove, ast.OpTrimBelow:
		sz, nb = e.size[n.A]/2, e.fromNbr[n.A]
		e.cost += iters * math.Log2(math.Max(e.size[n.A], 2)) * e.units.Scalar
	case ast.OpCopy:
		sz, nb = e.size[n.A], e.fromNbr[n.A]
		e.cost += iters * e.size[n.A] * e.units.Scalar
	case ast.OpFilterLabel, ast.OpFilterLabelOfVar:
		sz, nb = e.size[n.A]/e.st.Labels, e.fromNbr[n.A]
		e.cost += iters * e.size[n.A] * e.units.Scalar
	case ast.OpFilterLabelNotOfVar:
		sz, nb = e.size[n.A]*(1-1/e.st.Labels), e.fromNbr[n.A]
		e.cost += iters * e.size[n.A] * e.units.Scalar
	}
	if sz < 0 {
		sz = 0
	}
	e.size[n.Dst] = sz
	e.fromNbr[n.Dst] = nb
	e.chain[n.Dst] = ch
}
