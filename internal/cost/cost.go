// Package cost implements DecoMine's three cost models (paper §6): the
// AutoMine-style random-graph model, the locality-aware model, and the
// approximate-mining based model backed by a sampled pattern-count
// profile. A model assigns an estimated execution cost to a compiled AST;
// the algorithm search engine ranks candidate plans by this number, so
// only relative accuracy matters.
package cost

import (
	"math"

	"decomine/internal/ast"
	"decomine/internal/graph"
	"decomine/internal/obs"
	"decomine/internal/sampling"
	"decomine/internal/vset"
)

// Per-model evaluation counters: one increment per candidate plan
// costed, so the registry shows how much ranking work each search did
// and which model is live.
var (
	obsEvalAutoMine = obs.Default.Counter("cost.evals.automine")
	obsEvalLocality = obs.Default.Counter("cost.evals.locality")
	obsEvalApprox   = obs.Default.Counter("cost.evals.approx-mining")
)

// GraphStats summarizes the input graph for the analytic models.
type GraphStats struct {
	N      float64 // |V|
	AvgDeg float64 // 2|E|/|V|
	Labels float64 // number of distinct labels (1 if unlabeled)
	// HubProb is the fraction of adjacency covered by the graph's hub
	// bitmap index (hub degree sum / 2|E|), i.e. the degree-weighted
	// probability that a neighbor-set operand of an intersection has a
	// bitmap row and the VM takes an O(min) kernel instead of an
	// O(a+b) merge. Zero when the graph has no hub index.
	HubProb float64
	// Slabs is the graph's storage partition count and SlabCross the
	// degree-weighted probability that two independent neighbor-list
	// operands live in different slabs: 1 − Σ_s share(s)², where
	// share(s) is slab s's fraction of the adjacency volume. It is the
	// "slab span" of a candidate plan's neighbor operands — the chance an
	// intersection streams two different storage regions at once. Zero
	// for single-slab graphs.
	Slabs     float64
	SlabCross float64
}

// P returns the uniform connection probability AvgDeg/N used by the
// AutoMine model.
func (s GraphStats) P() float64 {
	if s.N == 0 {
		return 0
	}
	return s.AvgDeg / s.N
}

// StatsOf derives GraphStats from a graph.
func StatsOf(g *graph.Graph) GraphStats {
	labels := float64(g.NumLabels())
	if labels < 1 {
		labels = 1
	}
	st := GraphStats{N: float64(g.NumVertices()), AvgDeg: g.AvgDegree(), Labels: labels}
	if ix := g.HubIndex(); ix != nil {
		if m2 := st.N * st.AvgDeg; m2 > 0 {
			st.HubProb = float64(ix.CoveredDegree()) / m2
		}
	}
	st.Slabs = float64(g.NumSlabs())
	if g.NumSlabs() > 1 {
		same := 0.0
		for _, share := range g.SlabShares() {
			same += share * share
		}
		st.SlabCross = 1 - same
	}
	return st
}

// Model estimates plan execution cost.
type Model interface {
	Name() string
	Cost(prog *ast.Program) float64
}

// ---- AutoMine random-graph model ----

type autoMine struct {
	st    GraphStats
	units Units
}

// NewAutoMine returns the baseline model: a random graph with n vertices
// where every pair is connected with fixed probability p (§6.1).
func NewAutoMine(st GraphStats) Model { return &autoMine{st: st, units: DefaultUnits()} }

func (m *autoMine) Name() string { return "automine" }

func (m *autoMine) withUnits(u Units) Model { c := *m; c.units = u; return &c }

func (m *autoMine) Cost(prog *ast.Program) float64 {
	obsEvalAutoMine.Inc()
	e := estimator{st: m.st, units: m.units, intersect: func(a, b float64, _, _ bool) float64 {
		return a * b / math.Max(m.st.N, 1)
	}}
	return e.run(prog)
}

// ---- locality-aware model ----

type locality struct {
	st     GraphStats
	plocal float64
	units  Units
}

// NewLocality returns the locality-aware model: vertices within α hops
// connect with probability plocal >> p (§6.1). In connected patterns all
// bound vertices are within the α=8 default, so every neighbor-set
// intersection uses plocal.
func NewLocality(st GraphStats, plocal float64) Model {
	if plocal <= 0 {
		plocal = 0.25
	}
	return &locality{st: st, plocal: plocal, units: DefaultUnits()}
}

func (m *locality) Name() string { return "locality" }

func (m *locality) withUnits(u Units) Model { c := *m; c.units = u; return &c }

func (m *locality) Cost(prog *ast.Program) float64 {
	obsEvalLocality.Inc()
	e := estimator{st: m.st, units: m.units, intersect: func(a, b float64, na, nb bool) float64 {
		if na && nb {
			return math.Min(a, b) * m.plocal
		}
		return a * b / math.Max(m.st.N, 1)
	}}
	return e.run(prog)
}

// ---- approximate-mining model ----

type approxMining struct {
	st       GraphStats
	profile  *sampling.Profile
	fallback Model
	units    Units
}

// NewApproxMining returns the approximate-mining based model (§6.2): the
// iteration count of a loop level is estimated by the profiled count of
// the pattern prefix reaching that level. Prefixes without profile
// entries (disconnected prefixes, oversized patterns) fall back to the
// locality model's branching estimate.
func NewApproxMining(st GraphStats, profile *sampling.Profile) Model {
	return &approxMining{st: st, profile: profile, fallback: NewLocality(st, 0.25), units: DefaultUnits()}
}

func (m *approxMining) Name() string { return "approx-mining" }

func (m *approxMining) withUnits(u Units) Model { c := *m; c.units = u; return &c }

func (m *approxMining) Cost(prog *ast.Program) float64 {
	obsEvalApprox.Inc()
	e := estimator{
		st:    m.st,
		units: m.units,
		intersect: func(a, b float64, na, nb bool) float64 {
			if na && nb {
				return math.Min(a, b) * 0.25
			}
			return a * b / math.Max(m.st.N, 1)
		},
		loopCount: func(meta *ast.LoopMeta, parentCount float64) (float64, bool) {
			if meta == nil || meta.Prefix == nil {
				return 0, false
			}
			c, ok := m.profile.Count(meta.Prefix)
			if !ok {
				return 0, false
			}
			if meta.Trimmed {
				// Symmetry-breaking trims cut the surviving tuples by the
				// prefix automorphism factor; a factor-2 per trim is the
				// standard coarse correction.
				c /= 2
			}
			return math.Max(c, 1e-9), true
		},
	}
	return e.run(prog)
}

// ---- shared AST-walking estimator ----

// estimator walks a program accumulating expected work. For every set
// register it tracks an estimated cardinality and whether the set derives
// from neighbor lists (the locality signal); for every loop it tracks the
// expected total number of iterations across the whole execution.
type estimator struct {
	st GraphStats
	// units weights the cost sites; under DefaultUnits every estimate
	// is bit-identical to the unweighted formulas (every weight is an
	// exact 1.0 multiply, gallop modeling is off).
	units     Units
	intersect func(a, b float64, aNb, bNb bool) float64
	// loopCount, when set and returning ok, overrides the expected TOTAL
	// number of iterations of a loop (absolute, profile units).
	loopCount func(meta *ast.LoopMeta, parentCount float64) (float64, bool)

	size    []float64
	fromNbr []bool
	cost    float64
}

func (e *estimator) run(prog *ast.Program) float64 {
	e.size = make([]float64, prog.NumSets)
	e.fromNbr = make([]bool, prog.NumSets)
	e.walk(prog.Root.Body, 1, 1)
	return e.cost
}

// walk processes a body executed `iters` expected times total; prefCount
// is the profile-unit count of tuples reaching this body (used to chain
// loopCount overrides).
func (e *estimator) walk(body []*ast.Node, iters, prefCount float64) {
	for _, n := range body {
		switch n.Kind {
		case ast.KLoop:
			perIter := e.size[n.Over]
			if perIter < 0 {
				perIter = 0
			}
			total := iters * perIter
			childPref := prefCount * perIter
			if e.loopCount != nil {
				if c, ok := e.loopCount(n.Meta, prefCount); ok {
					// The profile gives the absolute number of prefix
					// tuples, which IS the total iteration count of this
					// loop level (§6.2's key observation). All candidate
					// plans are costed in the same profile units, so the
					// ranking is consistent.
					total = c
					childPref = c
				}
			}
			e.cost += total * e.units.Loop // loop bookkeeping
			e.walk(n.Body, math.Max(total, 1e-12), math.Max(childPref, 1e-12))
		case ast.KSetDef:
			e.defineSet(n, iters)
		case ast.KScalarDef, ast.KScalarReset, ast.KScalarAccum, ast.KGlobalAdd:
			e.cost += iters * e.units.Scalar
		case ast.KHashClear:
			e.cost += iters * e.units.Hash
		case ast.KHashInc, ast.KHashGet:
			e.cost += 2 * iters * e.units.Hash
		case ast.KEmit:
			e.cost += 2 * iters * e.units.Emit
		case ast.KCondPos:
			e.walk(n.Body, iters, prefCount)
		}
	}
}

// hubProbOf returns the probability that at least one of the two
// intersect operands carries a hub bitmap row: only neighbor-derived
// sets can, each independently with probability HubProb.
func (e *estimator) hubProbOf(a, b int) float64 {
	p := e.st.HubProb
	if p <= 0 {
		return 0
	}
	switch {
	case e.fromNbr[a] && e.fromNbr[b]:
		return 1 - (1-p)*(1-p)
	case e.fromNbr[a] || e.fromNbr[b]:
		return p
	}
	return 0
}

// arrayPassCost prices the array path of a two-operand set pass over
// expected sizes a and b: an O(a+b) merge, or — when gallop modeling is
// calibrated on (GallopElem > 0) and the expected size ratio crosses
// the VM's dispatch threshold — the O(min·log(max/min)) galloping
// search the VM would actually run.
func (e *estimator) arrayPassCost(a, b float64) float64 {
	if g := e.units.GallopElem; g > 0 {
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo > 0 && hi >= lo*vset.GallopThreshold {
			return lo * (math.Log2(hi/lo) + 1) * g
		}
	}
	return (a + b) * e.units.MergeElem
}

// slabSpanCost prices the locality penalty of a two-operand set pass
// whose neighbor-derived operands live in different storage slabs: with
// probability SlabCross the pass streams two slabs at once, costing an
// extra SlabCrossElem per element touched. Off (zero) unless the weight
// is installed and the graph is partitioned — only neighbor pairs span
// slabs, derived scratch sets are worker-local.
func (e *estimator) slabSpanCost(a, b float64, aNb, bNb bool) float64 {
	w := e.units.SlabCrossElem
	if w <= 0 || e.st.SlabCross <= 0 || !aNb || !bNb {
		return 0
	}
	return e.st.SlabCross * (a + b) * w
}

func (e *estimator) defineSet(n *ast.Node, iters float64) {
	var sz float64
	var nb bool
	switch n.Op {
	case ast.OpAll:
		sz, nb = e.st.N, false
	case ast.OpNeighbors:
		sz, nb = e.st.AvgDeg, true
	case ast.OpIntersect:
		a, b := e.size[n.A], e.size[n.B]
		sz = e.intersect(a, b, e.fromNbr[n.A], e.fromNbr[n.B])
		nb = e.fromNbr[n.A] || e.fromNbr[n.B]
		// Kernel-aware merge cost: with probability HubProb a
		// neighbor-derived operand has a hub bitmap row and the VM runs
		// the O(min) array×bitmap filter instead of the O(a+b) merge.
		if p := e.hubProbOf(n.A, n.B); p > 0 {
			e.cost += iters * (p*math.Min(a, b)*e.units.BitmapElem + (1-p)*e.arrayPassCost(a, b))
		} else {
			e.cost += iters * e.arrayPassCost(a, b) // merge cost
		}
		e.cost += iters * e.slabSpanCost(a, b, e.fromNbr[n.A], e.fromNbr[n.B])
	case ast.OpSubtract:
		a, b := e.size[n.A], e.size[n.B]
		frac := 1 - b/math.Max(e.st.N, 1)
		if frac < 0.05 {
			frac = 0.05
		}
		sz, nb = a*frac, e.fromNbr[n.A]
		// A hub row on the subtrahend turns the O(a+b) merge into an
		// O(a) probe filter. Subtraction never gallops in the VM, so
		// the array path is always priced as a merge.
		if e.fromNbr[n.B] && e.st.HubProb > 0 {
			p := e.st.HubProb
			e.cost += iters * (p*a*e.units.BitmapElem + (1-p)*(a+b)*e.units.MergeElem)
		} else {
			e.cost += iters * (a + b) * e.units.MergeElem
		}
		e.cost += iters * e.slabSpanCost(a, b, e.fromNbr[n.A], e.fromNbr[n.B])
	case ast.OpRemove:
		sz, nb = math.Max(e.size[n.A]-1, 0), e.fromNbr[n.A]
		e.cost += iters * e.size[n.A] * e.units.Scalar
	case ast.OpTrimAbove, ast.OpTrimBelow:
		sz, nb = e.size[n.A]/2, e.fromNbr[n.A]
		e.cost += iters * math.Log2(math.Max(e.size[n.A], 2)) * e.units.Scalar
	case ast.OpCopy:
		sz, nb = e.size[n.A], e.fromNbr[n.A]
		e.cost += iters * e.size[n.A] * e.units.Scalar
	case ast.OpFilterLabel, ast.OpFilterLabelOfVar:
		sz, nb = e.size[n.A]/e.st.Labels, e.fromNbr[n.A]
		e.cost += iters * e.size[n.A] * e.units.Scalar
	case ast.OpFilterLabelNotOfVar:
		sz, nb = e.size[n.A]*(1-1/e.st.Labels), e.fromNbr[n.A]
		e.cost += iters * e.size[n.A] * e.units.Scalar
	}
	if sz < 0 {
		sz = 0
	}
	e.size[n.Dst] = sz
	e.fromNbr[n.Dst] = nb
}
