package decomine

// Differential and determinism tests for the work-stealing scheduler:
// the VM with stealing (the default driver) must agree with the
// sequential tree-walker on every pattern flavor — plain, labeled,
// vertex-induced and group-constrained — over both uniform G(n,p) and
// skewed R-MAT graphs, and its merged OpCounts must not depend on the
// thread count or the steal schedule.

import (
	"testing"
)

func stealSystem(g *Graph, threads int) *System {
	return NewSystem(g, Options{Threads: threads, CostModel: CostLocality})
}

func treeSystem(g *Graph) *System {
	return NewSystem(g, Options{Threads: 1, CostModel: CostLocality, Interpreter: InterpreterTree})
}

func TestStealDifferentialAcrossGraphShapes(t *testing.T) {
	graphs := []struct {
		name string
		g    *Graph
	}{
		{"gnp", GenerateGNP(120, 0.07, 501).WithRandomLabels(3, 502)},
		{"rmat", GenerateRMAT(8, 7, 503).WithRandomLabels(3, 504)},
	}
	names := []string{"clique-3", "cycle-4", "clique-4", "house"}
	for _, gc := range graphs {
		vm := stealSystem(gc.g, 4)
		tree := treeSystem(gc.g)
		for _, name := range names {
			p, err := PatternByName(name)
			if err != nil {
				t.Fatal(err)
			}
			// Plain edge-induced.
			got, err := vm.GetPatternCount(p)
			if err != nil {
				t.Fatalf("%s %s vm: %v", gc.name, name, err)
			}
			want, err := tree.GetPatternCount(p)
			if err != nil {
				t.Fatalf("%s %s tree: %v", gc.name, name, err)
			}
			if got != want {
				t.Errorf("%s %s: steal VM %d != tree %d", gc.name, name, got, want)
			}
			// Vertex-induced.
			got, err = vm.GetPatternCountVertexInduced(p)
			if err != nil {
				t.Fatalf("%s %s vm induced: %v", gc.name, name, err)
			}
			want, err = tree.GetPatternCountVertexInduced(p)
			if err != nil {
				t.Fatalf("%s %s tree induced: %v", gc.name, name, err)
			}
			if got != want {
				t.Errorf("%s %s induced: steal VM %d != tree %d", gc.name, name, got, want)
			}
			// Group-constrained (all pattern vertices share one label).
			cons := []LabelConstraint{{Kind: AllSameLabel, Vertices: allVerts(p)}}
			got, err = vm.CountWithConstraints(p, cons)
			if err != nil {
				t.Fatalf("%s %s vm constrained: %v", gc.name, name, err)
			}
			want, err = tree.CountWithConstraints(p, cons)
			if err != nil {
				t.Fatalf("%s %s tree constrained: %v", gc.name, name, err)
			}
			if got != want {
				t.Errorf("%s %s constrained: steal VM %d != tree %d", gc.name, name, got, want)
			}
		}
		vm.Close()
		tree.Close()
	}
}

func allVerts(p *Pattern) []int {
	vs := make([]int, p.NumVertices())
	for i := range vs {
		vs[i] = i
	}
	return vs
}

// TestStealOpCountsThreadIndependent runs the same query under 1, 2, 4
// and 7 workers (odd counts shift the steal schedule) and requires
// byte-identical per-opcode totals from LastExecStats every time.
func TestStealOpCountsThreadIndependent(t *testing.T) {
	g := GenerateRMAT(9, 7, 601)
	p, err := PatternByName("house")
	if err != nil {
		t.Fatal(err)
	}
	var base map[string]int64
	var baseCount int64
	for _, threads := range []int{1, 2, 4, 7} {
		sys := stealSystem(g, threads)
		c, err := sys.GetPatternCount(p)
		if err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		st := sys.LastExecStats()
		if base == nil {
			base, baseCount = st.PerOp, c
			sys.Close()
			continue
		}
		if c != baseCount {
			t.Fatalf("threads=%d: count %d != %d", threads, c, baseCount)
		}
		if len(st.PerOp) != len(base) {
			t.Fatalf("threads=%d: %d opcodes != %d", threads, len(st.PerOp), len(base))
		}
		for op, n := range base {
			if st.PerOp[op] != n {
				t.Fatalf("threads=%d: op %s executed %d times, want %d", threads, op, st.PerOp[op], n)
			}
		}
		sys.Close()
	}
}

// TestStealDeterministicRepeats re-runs one query many times on a
// shared pool: the count must never vary with the (nondeterministic)
// steal schedule.
func TestStealDeterministicRepeats(t *testing.T) {
	g := GenerateRMAT(8, 8, 701)
	sys := stealSystem(g, 4)
	defer sys.Close()
	p, err := PatternByName("cycle-4")
	if err != nil {
		t.Fatal(err)
	}
	want, err := sys.GetPatternCount(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		got, err := sys.GetPatternCount(p)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("repeat %d: %d != %d", i, got, want)
		}
	}
	if st := sys.LastExecStats(); st.Instructions == 0 {
		t.Fatal("no instructions recorded")
	}
}
