package decomine

import (
	"fmt"

	"decomine/internal/ast"
	"decomine/internal/core"
	"decomine/internal/engine"
	"decomine/internal/pattern"
)

// MotifCount pairs a motif pattern with its vertex-induced embedding
// count and the per-class query stats of the class's own edge-induced
// subquery (zero-valued when that subquery was served from a cache
// rather than executed in this batch).
type MotifCount struct {
	Pattern *Pattern
	Count   int64
	Stats   QueryStats
}

// MotifCounts implements k-motif counting (k-MC): the vertex-induced
// count of every connected pattern with exactly k vertices. Following
// the paper (§2.2), the system counts edge-induced embeddings of all
// size-k pattern classes — where decomposition applies — and recovers
// the vertex-induced counts through the inclusion-exclusion conversion,
// rather than enumerating each vertex-induced motif directly. The
// census runs through the batch layer (CountPatterns): each distinct
// class executes exactly once, shared shrinkage quotients are counted
// standalone instead of per-plan, and the subqueries run concurrently
// on the System's pool. Each subquery is still a full query — visible
// at /debug/queries and eligible for the slow-query log.
func (s *System) MotifCounts(k int) ([]MotifCount, error) {
	counts, _, err := s.MotifCountsStats(k)
	return counts, err
}

// MotifCountsStats is MotifCounts plus the batch-level stats record:
// total instructions, shared-subquery hits, and the compile/exec time
// split aggregated across the census.
func (s *System) MotifCountsStats(k int) ([]MotifCount, *BatchStats, error) {
	if k < 1 || k > 7 {
		return nil, nil, fmt.Errorf("decomine: motif counting supports k in 1..7, got %d", k)
	}
	pats := pattern.ConnectedPatterns(k)
	members := make([]*Pattern, len(pats))
	for i, p := range pats {
		members[i] = &Pattern{p}
	}
	br, err := s.CountPatterns(members, BatchOpts{Induced: true})
	if err != nil {
		return nil, nil, err
	}
	out := make([]MotifCount, len(pats))
	for i, p := range pats {
		out[i] = MotifCount{
			Pattern: &Pattern{p.Clone()},
			Count:   br.Results[i].Count,
			Stats:   br.Results[i].Stats,
		}
	}
	return out, &br.Stats, nil
}

// TotalMotifCount sums the vertex-induced counts of all k-motifs (a
// convenient single number for benchmarking).
func (s *System) TotalMotifCount(k int) (int64, error) {
	counts, err := s.MotifCounts(k)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, mc := range counts {
		total += mc.Count
	}
	return total, nil
}

// CycleCount counts edge-induced embeddings of the k-cycle (the paper's
// k-cycle mining workload, Table 7).
func (s *System) CycleCount(k int) (int64, error) {
	p, err := PatternByName(fmt.Sprintf("cycle-%d", k))
	if err != nil {
		return 0, err
	}
	return s.GetPatternCount(p)
}

// PseudoCliqueCount counts vertex-induced pseudo-cliques with n vertices
// and at most `missing` absent edges (paper §8.1; the experiments use
// missing = 1).
func (s *System) PseudoCliqueCount(n, missing int) (int64, error) {
	var total int64
	for _, p := range pattern.PseudoCliques(n, missing) {
		vi, err := s.GetPatternCountVertexInduced(&Pattern{p})
		if err != nil {
			return 0, err
		}
		total += vi
	}
	return total, nil
}

// CountAll counts several patterns in one merged execution with
// cross-pattern computation reuse (paper §2.2 Optimization 2, Figure 5):
// identical candidate-set computations are shared and loops over the
// same sets are fused, so common matching-process prefixes run once.
// Results are returned in input order.
func (s *System) CountAll(patterns []*Pattern) ([]int64, error) {
	plans := make([]*core.Plan, len(patterns))
	for i, p := range patterns {
		plan, err := s.plan(p.p, core.ModeCount, false)
		if err != nil {
			return nil, err
		}
		plans[i] = plan
	}
	merged, err := core.MergePlans(plans)
	if err != nil {
		return nil, err
	}
	// The merged program is a fresh AST, so the aux pass re-runs on it;
	// without a per-model decider here the structural default arbitrates.
	merged.LowerOpts = ast.LowerOpts{DisableAux: s.opts.DisableAuxGraphs}
	runOpts := engine.Options{Threads: s.opts.Threads, Interpreter: s.engineInterp()}
	if runOpts.Interpreter == engine.InterpVM {
		runOpts.Code = merged.Lowered()
	}
	res, err := engine.Run(s.graph.g, merged.Prog, runOpts)
	if err != nil {
		return nil, err
	}
	s.noteExecStats(res)
	out := make([]int64, len(patterns))
	for i := range patterns {
		out[i] = res.Globals[merged.CountGlobals[i]] / merged.Divisors[i]
	}
	return out, nil
}
